"""Streaming-analysis lifecycle shared by the Figure 6-8 consumers.

Every trace analysis is an *incremental consumer*: it observes one
:class:`~repro.trace.events.MemoryAccess` at a time through ``update()``
and produces its result dataclass exactly once through ``finalize()``.
Nothing in the lifecycle requires a materialized trace, so any
:class:`~repro.trace.container.TraceLike` — an in-memory ``Trace`` or a
lazy ``TraceSource`` — can be analyzed in a single pass with peak memory
independent of trace length (bounded by the workload's address footprint
and the analysis' own window sizes, never by the access count).
"""

from __future__ import annotations

import abc
from collections import deque
from time import perf_counter
from typing import Any, Callable, Iterable, Optional

from repro.common.config import SystemConfig
from repro.kernels import KERNEL_VECTOR, resolve_kernel
from repro.kernels.prepass import AccessChunk, iter_trace_chunks
from repro.memsys.hierarchy import Hierarchy, ServiceLevel
from repro.prefetch.sms.generations import ActiveGenerationTable
from repro.telemetry import PHASE_FINALIZE, PHASE_WALK, phases_active
from repro.trace.events import MemoryAccess


class StreamingAnalysis(abc.ABC):
    """One-pass trace consumer with an ``update()``/``finalize()`` lifecycle.

    Subclasses implement ``_update`` (observe one access) and ``_finalize``
    (assemble the result); the base class enforces the lifecycle: an
    analysis accepts accesses until it is finalized, yields its result
    exactly once, and rejects any use afterwards.

    Typical use::

        analysis = CorrelationDistanceAnalysis(system, workload="db2")
        for access in trace_source:     # never materialized
            analysis.update(access)
        result = analysis.finalize()
    """

    def __init__(self) -> None:
        self._finalized = False

    def update(self, access: MemoryAccess) -> None:
        """Observe one access.

        Args:
            access: the next trace record, in trace order.

        Raises:
            RuntimeError: if the analysis has already been finalized.
        """
        if self._finalized:
            raise RuntimeError(
                f"{type(self).__name__}.update() called after finalize()"
            )
        self._update(access)

    def update_block(self, chunk: AccessChunk) -> None:
        """Observe one whole :class:`~repro.kernels.AccessChunk`.

        The chunk-level entry point for the vector kernel: the lifecycle
        check runs once per chunk and the per-access hook is driven by a
        C-level ``map``. The base implementation feeds ``_update`` in
        order — bit-identical to calling :meth:`update` per access —
        and subclasses whose state updates are associative over a chunk
        (hierarchy-replay accounting with precomputed block ids)
        override it with a batched version.

        Raises:
            RuntimeError: if the analysis has already been finalized.
        """
        if self._finalized:
            raise RuntimeError(
                f"{type(self).__name__}.update_block() called after finalize()"
            )
        deque(map(self._update, chunk.accesses), maxlen=0)

    def finalize(self) -> Any:
        """Close the analysis and return its result (exactly once).

        Returns:
            The analysis-specific result dataclass.

        Raises:
            RuntimeError: if the analysis was already finalized.
        """
        if self._finalized:
            raise RuntimeError(
                f"{type(self).__name__}.finalize() called twice"
            )
        self._finalized = True
        return self._finalize()

    def consume(
        self, accesses: Iterable[MemoryAccess], kernel: Optional[str] = None
    ) -> Any:
        """Drive the full lifecycle over ``accesses`` and return the result.

        Args:
            accesses: any iterable of trace records (``Trace``,
                ``TraceSource``, generator, ...), walked exactly once.
            kernel: trace-walk kernel (see :func:`repro.kernels.resolve_kernel`);
                the vector kernel pumps :meth:`update_block` per chunk,
                the python kernel :meth:`update` per record —
                bit-identical results either way.

        Returns:
            Whatever :meth:`finalize` returns.
        """
        timer = phases_active()
        if resolve_kernel(kernel) == KERNEL_VECTOR:
            update_block = self.update_block
            if timer is None:
                for chunk in iter_trace_chunks(accesses):
                    update_block(chunk)
                return self.finalize()
            for chunk in iter_trace_chunks(accesses):
                start = perf_counter()
                update_block(chunk)
                timer.add(PHASE_WALK, perf_counter() - start)
        else:
            update = self.update
            if timer is None:
                for access in accesses:
                    update(access)
                return self.finalize()
            # whole-loop timing (trace production included): per-record
            # timer calls would dwarf the walk itself
            start = perf_counter()
            for access in accesses:
                update(access)
            timer.add(PHASE_WALK, perf_counter() - start)
        start = perf_counter()
        result = self.finalize()
        timer.add(PHASE_FINALIZE, perf_counter() - start)
        return result

    @abc.abstractmethod
    def _update(self, access: MemoryAccess) -> None:
        """Observe one access (subclass hook; lifecycle already checked)."""

    @abc.abstractmethod
    def _finalize(self) -> Any:
        """Assemble and return the result (subclass hook)."""


class HierarchyReplayAnalysis(StreamingAnalysis):
    """Streaming analysis that replays accesses through a cache hierarchy.

    The Figure 6-8 analyses all share the same per-access plumbing: map
    the address to a block, walk it through a private hierarchy to learn
    whether it misses off-chip, and (for the spatial analyses) feed the
    SMS active-generation table, forwarding L1 evictions so generations
    end exactly as they would in the real mechanism. Centralizing that
    walk keeps the analyses' miss definitions in lockstep; subclasses
    implement :meth:`_observe` with their own accounting.

    Args:
        system: cache geometry used to identify off-chip misses.
        use_agt: track spatial generations (the temporal-only analyses
            skip the table entirely; it never affects the hierarchy).
        on_generation_end: callback handed to the generation table.
        agt_entries: active-generation-table capacity.
    """

    def __init__(
        self,
        system: SystemConfig,
        use_agt: bool = True,
        on_generation_end: Optional[Callable] = None,
        agt_entries: int = 64,
    ) -> None:
        super().__init__()
        self._amap = system.address_map
        self._block_bits = self._amap.block_bits
        self._hierarchy = Hierarchy(system)
        self._agt: Optional[ActiveGenerationTable] = (
            ActiveGenerationTable(
                agt_entries, self._amap, on_generation_end=on_generation_end
            )
            if use_agt
            else None
        )

    def update_block(self, chunk: AccessChunk) -> None:
        """Batched hierarchy replay: block ids come from the chunk's
        vectorized pre-pass instead of a per-access ``block_of`` call,
        and the per-access hook runs inside one C-driven ``map``."""
        if self._finalized:
            raise RuntimeError(
                f"{type(self).__name__}.update_block() called after finalize()"
            )
        deque(
            map(self._step, chunk.accesses, chunk.blocks_for(self._block_bits)),
            maxlen=0,
        )

    def _update(self, access: MemoryAccess) -> None:
        self._step(access, access.address >> self._block_bits)

    def _step(self, access: MemoryAccess, block: int) -> None:
        outcome = self._hierarchy.access(block)
        offchip = outcome.level is ServiceLevel.MEMORY
        agt = self._agt
        if agt is not None:
            observed = agt.observe(access.pc, block, offchip=offchip)
            for evicted in outcome.l1_evictions:
                agt.on_l1_eviction(evicted)
        else:
            observed = None
        self._observe(access, block, offchip, observed)

    @abc.abstractmethod
    def _observe(self, access: MemoryAccess, block: int, offchip: bool,
                 generation) -> None:
        """Account one replayed access.

        Args:
            access: the trace record just replayed.
            block: its block id.
            offchip: True when the hierarchy serviced it from memory.
            generation: the generation table's observe result, or None
                when ``use_agt`` is False.
        """
