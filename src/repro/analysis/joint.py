"""Joint TMS/SMS predictability classification (Fig. 6, §5.2).

Every off-chip read miss is classified as predictable by *idealized*
temporal correlation, idealized spatial correlation, both, or neither:

* **temporally predictable** — one of the last ``WINDOW`` misses recurred
  earlier in the global sequence with this address within ``WINDOW``
  positions after it: a temporal predictor that located that miss and
  streamed with that lookahead would fetch this address (an exact-digram
  test would be too strict — streaming tolerates small insertions and
  deletions, §2.2);
* **spatially predictable** — the miss is not a trigger, and its offset
  is in the pattern most recently recorded for the same (PC, offset)
  index — the bit-vector SMS semantics: an all-time union would wrongly
  credit aliased indexes whose patterns conflict.

These limit-study definitions deliberately ignore finite tables, stream
queues and SVB capacity — Fig. 6 measures *opportunity*, and Fig. 9 then
shows how much of it the real mechanisms capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.common.config import SystemConfig
from repro.memsys.hierarchy import Hierarchy, ServiceLevel
from repro.prefetch.sms.generations import ActiveGenerationTable, SpatialIndex
from repro.trace.container import Trace


@dataclass(frozen=True)
class JointCoverageResult:
    """Fractions of off-chip read misses per Fig. 6 category."""

    workload: str
    misses: int
    both: float
    tms_only: float
    sms_only: float
    neither: float

    @property
    def temporal(self) -> float:
        """Total temporally predictable fraction."""
        return self.both + self.tms_only

    @property
    def spatial(self) -> float:
        """Total spatially predictable fraction."""
        return self.both + self.sms_only

    @property
    def joint(self) -> float:
        """Fraction predictable by at least one technique."""
        return self.both + self.tms_only + self.sms_only

    def format(self) -> str:
        return (
            f"{self.workload:<8} both={self.both:6.1%} "
            f"tms-only={self.tms_only:6.1%} sms-only={self.sms_only:6.1%} "
            f"neither={self.neither:6.1%} (n={self.misses})"
        )


#: streaming tolerance of the idealized temporal classifier (the paper's
#: mechanisms use a lookahead of 8, §4.3)
TEMPORAL_WINDOW = 8


def joint_coverage_analysis(
    trace: Trace, system: SystemConfig, skip_fraction: float = 0.0
) -> JointCoverageResult:
    """Classify each off-chip read miss of ``trace`` (Fig. 6).

    ``skip_fraction`` excludes the leading portion of the trace from the
    reported counts (training still sees it) — the paper classifies
    traces collected after extensive warming (§5.1), so cold-start
    compulsory misses would otherwise be over-represented.
    """
    if not 0.0 <= skip_fraction < 1.0:
        raise ValueError(f"skip_fraction must be in [0, 1), got {skip_fraction}")
    measure_from = int(len(trace) * skip_fraction)
    amap = system.address_map
    hierarchy = Hierarchy(system)
    #: full miss sequence and last-occurrence index, for the windowed
    #: temporal-predictability test
    miss_sequence: List[int] = []
    last_occurrence: Dict[int, int] = {}
    #: per miss position: the previous occurrence of that address, if any
    previous_occurrence: List[Optional[int]] = []
    #: per spatial index: offsets ever touched in a completed generation
    spatial_history: Dict[SpatialIndex, Set[int]] = {}

    def on_end(record) -> None:
        spatial_history[record.index] = {e.offset for e in record.elements}

    agt = ActiveGenerationTable(64, amap, on_generation_end=on_end)

    counts = {"both": 0, "tms": 0, "sms": 0, "neither": 0}
    misses = 0
    for access in trace:
        block = amap.block_of(access.address)
        outcome = hierarchy.access(block)
        offchip = outcome.level is ServiceLevel.MEMORY
        result = agt.observe(access.pc, block, offchip=offchip)
        for evicted in outcome.l1_evictions:
            agt.on_l1_eviction(evicted)
        if not offchip or access.is_write:
            continue
        measured = access.index >= measure_from
        if measured:
            misses += 1

        # temporal: did a recent miss occur earlier in the sequence with
        # this block among the addresses that followed it within the
        # streaming window?
        temporal = False
        window = TEMPORAL_WINDOW
        position = len(miss_sequence)
        for recent_pos in range(max(0, position - window), position):
            earlier = previous_occurrence[recent_pos]
            if earlier is None:
                continue
            if block in miss_sequence[earlier + 1:earlier + 1 + window]:
                temporal = True
                break
        previous_occurrence.append(last_occurrence.get(block))
        miss_sequence.append(block)
        last_occurrence[block] = position

        spatial = False
        if not result.is_trigger:
            history = spatial_history.get(result.record.index)
            spatial = (
                history is not None
                and amap.offset_in_region(block) in history
            )

        if measured:
            if temporal and spatial:
                counts["both"] += 1
            elif temporal:
                counts["tms"] += 1
            elif spatial:
                counts["sms"] += 1
            else:
                counts["neither"] += 1

    agt.flush()
    if misses == 0:
        return JointCoverageResult(trace.name, 0, 0.0, 0.0, 0.0, 0.0)
    return JointCoverageResult(
        workload=trace.name,
        misses=misses,
        both=counts["both"] / misses,
        tms_only=counts["tms"] / misses,
        sms_only=counts["sms"] / misses,
        neither=counts["neither"] / misses,
    )
