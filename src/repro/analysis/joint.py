"""Joint TMS/SMS predictability classification (Fig. 6, §5.2).

Every off-chip read miss is classified as predictable by *idealized*
temporal correlation, idealized spatial correlation, both, or neither:

* **temporally predictable** — one of the last ``WINDOW`` misses recurred
  earlier in the global sequence with this address within ``WINDOW``
  positions after it: a temporal predictor that located that miss and
  streamed with that lookahead would fetch this address (an exact-digram
  test would be too strict — streaming tolerates small insertions and
  deletions, §2.2);
* **spatially predictable** — the miss is not a trigger, and its offset
  is in the pattern most recently recorded for the same (PC, offset)
  index — the bit-vector SMS semantics: an all-time union would wrongly
  credit aliased indexes whose patterns conflict.

These limit-study definitions deliberately ignore finite tables, stream
queues and SVB capacity — Fig. 6 measures *opportunity*, and Fig. 9 then
shows how much of it the real mechanisms capture.

The classifier is a single-pass incremental consumer. The temporal test
nominally needs the window of misses *following the previous occurrence*
of each recent miss — which sounds like it requires the whole miss
sequence — but those windows can be captured forward: every miss opens
an (initially empty) successor window that the next ``WINDOW`` misses
fill in, and each miss records a reference to the window its *previous*
occurrence opened. Recent-miss entries then carry exactly the slice the
batch formulation would read, and peak memory is bounded by the address
footprint (one window reference per distinct block), never by trace
length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set

from repro.analysis.base import HierarchyReplayAnalysis
from repro.common.config import SystemConfig
from repro.prefetch.sms.generations import SpatialIndex
from repro.trace.container import TraceLike
from repro.trace.events import MemoryAccess


@dataclass(frozen=True)
class JointCoverageResult:
    """Fractions of off-chip read misses per Fig. 6 category."""

    workload: str
    misses: int
    both: float
    tms_only: float
    sms_only: float
    neither: float

    @property
    def temporal(self) -> float:
        """Total temporally predictable fraction."""
        return self.both + self.tms_only

    @property
    def spatial(self) -> float:
        """Total spatially predictable fraction."""
        return self.both + self.sms_only

    @property
    def joint(self) -> float:
        """Fraction predictable by at least one technique."""
        return self.both + self.tms_only + self.sms_only

    def format(self) -> str:
        return (
            f"{self.workload:<8} both={self.both:6.1%} "
            f"tms-only={self.tms_only:6.1%} sms-only={self.sms_only:6.1%} "
            f"neither={self.neither:6.1%} (n={self.misses})"
        )


#: streaming tolerance of the idealized temporal classifier (the paper's
#: mechanisms use a lookahead of 8, §4.3)
TEMPORAL_WINDOW = 8


class JointPredictabilityAnalysis(HierarchyReplayAnalysis):
    """Incremental Fig. 6 classifier over one access stream.

    Args:
        system: cache geometry used to identify off-chip misses.
        measure_from: leading accesses excluded from the reported counts
            (training still sees them) — the paper classifies traces
            collected after extensive warming (§5.1), so cold-start
            compulsory misses would otherwise be over-represented.
        workload: name stamped on the result.
    """

    def __init__(
        self,
        system: SystemConfig,
        measure_from: int = 0,
        workload: str = "",
    ) -> None:
        super().__init__(
            system, on_generation_end=self._on_generation_end
        )
        if measure_from < 0:
            raise ValueError(f"measure_from must be >= 0, got {measure_from}")
        self.workload = workload
        self.measure_from = measure_from
        #: per spatial index: offsets ever touched in a completed generation
        self._spatial_history: Dict[SpatialIndex, Set[int]] = {}
        # -- temporal-window machinery (see module docstring) --------------
        #: successor window opened at each block's most recent miss
        self._window_after: Dict[int, List[int]] = {}
        #: windows still collecting their next TEMPORAL_WINDOW misses
        self._filling: Deque[List[int]] = deque()
        #: per recent miss: the window after its *previous* occurrence
        self._recent: Deque[Optional[List[int]]] = deque(maxlen=TEMPORAL_WINDOW)
        self._counts = {"both": 0, "tms": 0, "sms": 0, "neither": 0}
        self._misses = 0

    def _on_generation_end(self, record) -> None:
        self._spatial_history[record.index] = {
            e.offset for e in record.elements
        }

    def _observe(self, access: MemoryAccess, block: int, offchip: bool,
                 generation) -> None:
        if not offchip or access.is_write:
            return
        measured = access.index >= self.measure_from
        if measured:
            self._misses += 1

        # temporal: did a recent miss occur earlier in the sequence with
        # this block among the addresses that followed it within the
        # streaming window? Each recent entry holds exactly the misses
        # observed so far in the window after its previous occurrence.
        temporal = False
        for window in self._recent:
            if window is not None and block in window:
                temporal = True
                break
        self._recent.append(self._window_after.get(block))
        # this miss extends every window still collecting successors ...
        filling = self._filling
        for window in filling:
            window.append(block)
        while filling and len(filling[0]) >= TEMPORAL_WINDOW:
            filling.popleft()
        # ... and opens the successor window for its own occurrence
        opened: List[int] = []
        filling.append(opened)
        self._window_after[block] = opened

        spatial = False
        if not generation.is_trigger:
            history = self._spatial_history.get(generation.record.index)
            spatial = (
                history is not None
                and self._amap.offset_in_region(block) in history
            )

        if measured:
            if temporal and spatial:
                self._counts["both"] += 1
            elif temporal:
                self._counts["tms"] += 1
            elif spatial:
                self._counts["sms"] += 1
            else:
                self._counts["neither"] += 1

    def _finalize(self) -> JointCoverageResult:
        self._agt.flush()
        misses = self._misses
        if misses == 0:
            return JointCoverageResult(self.workload, 0, 0.0, 0.0, 0.0, 0.0)
        counts = self._counts
        return JointCoverageResult(
            workload=self.workload,
            misses=misses,
            both=counts["both"] / misses,
            tms_only=counts["tms"] / misses,
            sms_only=counts["sms"] / misses,
            neither=counts["neither"] / misses,
        )


def joint_coverage_analysis(
    trace: TraceLike, system: SystemConfig, skip_fraction: float = 0.0
) -> JointCoverageResult:
    """Classify each off-chip read miss of ``trace`` (Fig. 6).

    Materialized-convenience wrapper around
    :class:`JointPredictabilityAnalysis`: ``skip_fraction`` is resolved
    against ``len(trace)`` (or, for a lazy source, its ``length_hint``,
    which generators may overshoot by up to one burst) into the
    ``measure_from`` index the incremental classifier uses. The engine
    path (:mod:`repro.engine.exec`) instead resolves against the job's
    requested length on both the streamed and materialized paths, which
    is where bit-parity is guaranteed.
    """
    if not 0.0 <= skip_fraction < 1.0:
        raise ValueError(f"skip_fraction must be in [0, 1), got {skip_fraction}")
    measure_from = 0
    if skip_fraction:
        try:
            length = len(trace)  # type: ignore[arg-type]
        except TypeError:
            length = getattr(trace, "length_hint", None)
            if length is None:
                raise ValueError(
                    "skip_fraction needs a trace with len() or a "
                    "length_hint; pass measure_from to "
                    "JointPredictabilityAnalysis directly instead"
                ) from None
        measure_from = int(length * skip_fraction)
    analysis = JointPredictabilityAnalysis(
        system,
        measure_from=measure_from,
        workload=trace.name,
    )
    return analysis.consume(trace)
