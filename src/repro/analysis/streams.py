"""Temporal stream-length analysis (§2.1 / [24]).

The paper's case for temporal streaming rests on sequences being *long*
("frequently hundreds of misses"), which amortizes the cost of locating
a stream. This analysis measures that property directly: replaying the
miss sequence, it greedily matches each miss against the continuation of
its previous occurrence (with the streaming lookahead tolerance used by
the Fig. 6 classifier) and records how long each matched run survives.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.base import HierarchyReplayAnalysis
from repro.common.config import SystemConfig
from repro.trace.container import TraceLike
from repro.trace.events import MemoryAccess


@dataclass
class StreamLengthResult:
    """Distribution of matched temporal-stream lengths."""

    workload: str
    lengths: Counter = field(default_factory=Counter)

    @property
    def total_streams(self) -> int:
        return sum(self.lengths.values())

    @property
    def covered_misses(self) -> int:
        return sum(length * count for length, count in self.lengths.items())

    def mean_length(self) -> float:
        total = self.total_streams
        return self.covered_misses / total if total else 0.0

    def fraction_of_misses_in_streams_of_at_least(self, minimum: int) -> float:
        covered = self.covered_misses
        if covered == 0:
            return 0.0
        long_enough = sum(
            length * count
            for length, count in self.lengths.items()
            if length >= minimum
        )
        return long_enough / covered

    def format(self) -> str:
        return (
            f"{self.workload:<9} streams={self.total_streams:>6} "
            f"mean={self.mean_length():6.1f} "
            f">=10: {self.fraction_of_misses_in_streams_of_at_least(10):6.1%} "
            f">=100: {self.fraction_of_misses_in_streams_of_at_least(100):6.1%}"
        )


def stream_lengths_of_sequence(
    misses: Sequence[int], lookahead: int = 8, tolerance: int = 2
) -> StreamLengthResult:
    """Greedy stream matching over a miss-address sequence.

    A stream starts when a miss address has a previous occurrence; it
    continues while subsequent misses appear within ``lookahead``
    positions of the stream's cursor in the historical sequence. Up to
    ``tolerance`` consecutive unmatched misses are ridden out without
    ending the stream — a real stream's SVB blocks stay staged while the
    processor takes an unpredictable detour — after which the stream ends
    and a new one is located from the unmatched address.
    """
    result = StreamLengthResult(workload="sequence")
    last_occurrence: Dict[int, int] = {}
    cursor: Optional[int] = None  # position in history the stream follows
    current_length = 0
    unmatched_run = 0

    def close_stream() -> None:
        nonlocal current_length, unmatched_run
        if current_length > 0:
            result.lengths[current_length] += 1
        current_length = 0
        unmatched_run = 0

    for position, block in enumerate(misses):
        matched = False
        if cursor is not None:
            window = misses[cursor:cursor + lookahead]
            if block in window:
                offset = window.index(block)
                cursor += offset + 1
                current_length += 1
                unmatched_run = 0
                matched = True
        if not matched:
            unmatched_run += 1
            if cursor is None or unmatched_run > tolerance:
                close_stream()
                earlier = last_occurrence.get(block)
                cursor = earlier + 1 if earlier is not None else None
        last_occurrence[block] = position
    close_stream()
    return result


class StreamLengthAnalysis(HierarchyReplayAnalysis):
    """Incremental §2.1 stream-length analysis over one access stream.

    Collects the off-chip read-miss block sequence while walking the
    stream, then runs the greedy matcher at :meth:`finalize`. The greedy
    matcher relocates streams at a miss's arbitrarily old previous
    occurrence, so — unlike the other analyses — the full miss *block id*
    sequence is retained (plain ints, a small fraction of the access
    stream); the trace itself is never materialized.

    Args:
        system: cache geometry used to identify off-chip misses.
        lookahead: streaming window of the Fig. 6 classifier.
        workload: name stamped on the result.
    """

    def __init__(
        self,
        system: SystemConfig,
        lookahead: int = 8,
        workload: str = "",
    ) -> None:
        super().__init__(system, use_agt=False)
        self.workload = workload
        self.lookahead = lookahead
        self._misses: List[int] = []

    def _observe(self, access: MemoryAccess, block: int, offchip: bool,
                 generation) -> None:
        if offchip and not access.is_write:
            self._misses.append(block)

    def _finalize(self) -> StreamLengthResult:
        result = stream_lengths_of_sequence(
            self._misses, lookahead=self.lookahead
        )
        result.workload = self.workload
        return result


def stream_length_analysis(
    trace: TraceLike, system: SystemConfig, lookahead: int = 8
) -> StreamLengthResult:
    """Stream-length distribution for ``trace``'s off-chip read misses.

    Materialized-convenience wrapper around :class:`StreamLengthAnalysis`.
    """
    return StreamLengthAnalysis(
        system, lookahead=lookahead, workload=trace.name
    ).consume(trace)
