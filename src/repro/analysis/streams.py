"""Temporal stream-length analysis (§2.1 / [24]).

The paper's case for temporal streaming rests on sequences being *long*
("frequently hundreds of misses"), which amortizes the cost of locating
a stream. This analysis measures that property directly: replaying the
miss sequence, it greedily matches each miss against the continuation of
its previous occurrence (with the streaming lookahead tolerance used by
the Fig. 6 classifier) and records how long each matched run survives.

The matcher is incremental: misses are pushed one at a time and matched
against a *history window* of recent miss block ids. By default the
window is bounded (:data:`DEFAULT_HISTORY_LIMIT`), which makes this — the
pipeline's last formerly O(trace) consumer — O(1) in memory like every
other streaming analysis; real hardware equally locates streams in a
finite history buffer (the RMOB), not an unbounded log. Exact unbounded
matching remains available behind ``exact=True`` / ``history_limit=None``
and is asserted bit-identical to the bounded mode at tier-1 trace
lengths (``tests/test_streams_analysis.py``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.base import HierarchyReplayAnalysis
from repro.common.config import SystemConfig
from repro.trace.container import TraceLike
from repro.trace.events import MemoryAccess

#: bounded-history default: far beyond any tier-1 miss sequence (so
#: bounded and exact modes agree there) yet fixed, so memory stays O(1)
#: however long the trace grows
DEFAULT_HISTORY_LIMIT = 65536


@dataclass
class StreamLengthResult:
    """Distribution of matched temporal-stream lengths."""

    workload: str
    lengths: Counter = field(default_factory=Counter)

    @property
    def total_streams(self) -> int:
        return sum(self.lengths.values())

    @property
    def covered_misses(self) -> int:
        return sum(length * count for length, count in self.lengths.items())

    def mean_length(self) -> float:
        total = self.total_streams
        return self.covered_misses / total if total else 0.0

    def fraction_of_misses_in_streams_of_at_least(self, minimum: int) -> float:
        covered = self.covered_misses
        if covered == 0:
            return 0.0
        long_enough = sum(
            length * count
            for length, count in self.lengths.items()
            if length >= minimum
        )
        return long_enough / covered

    def format(self) -> str:
        return (
            f"{self.workload:<9} streams={self.total_streams:>6} "
            f"mean={self.mean_length():6.1f} "
            f">=10: {self.fraction_of_misses_in_streams_of_at_least(10):6.1%} "
            f">=100: {self.fraction_of_misses_in_streams_of_at_least(100):6.1%}"
        )


class GreedyStreamMatcher:
    """Incremental greedy stream matching over a miss-address sequence.

    A stream starts when a miss address has a previous occurrence; it
    continues while subsequent misses appear within ``lookahead``
    positions of the stream's cursor in the historical sequence. Up to
    ``tolerance`` consecutive unmatched misses are ridden out without
    ending the stream — a real stream's SVB blocks stay staged while the
    processor takes an unpredictable detour — after which the stream ends
    and a new one is located from the unmatched address.

    Args:
        lookahead: match window ahead of the stream cursor.
        tolerance: consecutive unmatched misses a live stream survives.
        history_limit: how many recent misses stay matchable. ``None``
            keeps the full sequence (exact mode, O(misses) memory); a
            bound keeps memory O(limit) — streams can then neither
            follow nor relocate into history older than the window, the
            only behavioural difference, and one that is unobservable
            while the miss sequence fits inside the window.
    """

    def __init__(
        self,
        lookahead: int = 8,
        tolerance: int = 2,
        history_limit: Optional[int] = None,
    ) -> None:
        if history_limit is not None and history_limit <= lookahead:
            raise ValueError(
                f"history_limit ({history_limit}) must exceed "
                f"lookahead ({lookahead})"
            )
        self.lookahead = lookahead
        self.tolerance = tolerance
        self.history_limit = history_limit
        self.lengths: Counter = Counter()
        self._history: List[int] = []
        self._base = 0  # absolute position of _history[0]
        self._last_occurrence: Dict[int, int] = {}
        self._cursor: Optional[int] = None  # absolute position followed
        self._current_length = 0
        self._unmatched_run = 0

    def _close_stream(self) -> None:
        if self._current_length > 0:
            self.lengths[self._current_length] += 1
        self._current_length = 0
        self._unmatched_run = 0

    def push(self, block: int) -> None:
        """Observe the next miss block id in sequence order."""
        history = self._history
        history.append(block)
        base = self._base
        position = base + len(history) - 1
        cursor = self._cursor

        matched = False
        # the window may cover the just-pushed position (a relocated
        # stream can sit right behind the present), which is why the
        # block is appended to history before matching
        if cursor is not None and cursor >= base:
            start = cursor - base
            try:
                offset = history.index(block, start, start + self.lookahead)
                matched = True
            except ValueError:
                pass
            if matched:
                self._cursor = cursor + (offset - start) + 1
                self._current_length += 1
                self._unmatched_run = 0
        if not matched:
            # a cursor that slid out of the bounded window cannot match;
            # it rides the tolerance out and relocates like any miss
            self._unmatched_run += 1
            if cursor is None or self._unmatched_run > self.tolerance:
                self._close_stream()
                earlier = self._last_occurrence.get(block)
                if earlier is not None and earlier >= base:
                    self._cursor = earlier + 1
                else:
                    self._cursor = None
        self._last_occurrence[block] = position

        limit = self.history_limit
        if limit is not None and len(history) > 2 * limit:
            self._compact(limit)

    def _compact(self, limit: int) -> None:
        """Drop history beyond the window; purge stale occurrence slots.

        Runs every ``limit`` pushes and costs O(live entries), so the
        amortized cost per miss is O(1) and both structures stay bounded
        by ``2 * limit`` regardless of trace length.
        """
        drop = len(self._history) - limit
        del self._history[:drop]
        self._base += drop
        base = self._base
        self._last_occurrence = {
            block: position
            for block, position in self._last_occurrence.items()
            if position >= base
        }

    def finish(self) -> Counter:
        """Close any live stream and return the length distribution."""
        self._close_stream()
        return self.lengths


def stream_lengths_of_sequence(
    misses: Sequence[int],
    lookahead: int = 8,
    tolerance: int = 2,
    history_limit: Optional[int] = None,
) -> StreamLengthResult:
    """Greedy stream matching over an in-memory miss-address sequence.

    Exact (unbounded-history) by default, since the sequence is already
    materialized; pass ``history_limit`` to bound the matchable window
    (see :class:`GreedyStreamMatcher`).
    """
    matcher = GreedyStreamMatcher(
        lookahead=lookahead, tolerance=tolerance, history_limit=history_limit
    )
    push = matcher.push
    for block in misses:
        push(block)
    result = StreamLengthResult(workload="sequence")
    result.lengths = matcher.finish()
    return result


class StreamLengthAnalysis(HierarchyReplayAnalysis):
    """Incremental §2.1 stream-length analysis over one access stream.

    Feeds the off-chip read-miss block sequence straight into a
    :class:`GreedyStreamMatcher` while walking the stream. With the
    default bounded history the whole analysis is O(1) in memory —
    nothing anywhere retains the trace or the full miss sequence;
    ``exact=True`` (or ``history_limit=None``) restores the unbounded
    matcher, which retains the miss block ids (plain ints) and is the
    reference the bounded mode is tested against.

    Args:
        system: cache geometry used to identify off-chip misses.
        lookahead: streaming window of the Fig. 6 classifier.
        workload: name stamped on the result.
        history_limit: matchable miss-history bound (ignored when
            ``exact``); defaults to :data:`DEFAULT_HISTORY_LIMIT`.
        exact: keep the full miss history (the pre-bounded behaviour).
    """

    def __init__(
        self,
        system: SystemConfig,
        lookahead: int = 8,
        workload: str = "",
        history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT,
        exact: bool = False,
    ) -> None:
        super().__init__(system, use_agt=False)
        self.workload = workload
        self.lookahead = lookahead
        self._matcher = GreedyStreamMatcher(
            lookahead=lookahead,
            history_limit=None if exact else history_limit,
        )

    def _observe(self, access: MemoryAccess, block: int, offchip: bool,
                 generation) -> None:
        if offchip and not access.is_write:
            self._matcher.push(block)

    def _finalize(self) -> StreamLengthResult:
        result = StreamLengthResult(workload=self.workload)
        result.lengths = self._matcher.finish()
        return result


def stream_length_analysis(
    trace: TraceLike, system: SystemConfig, lookahead: int = 8
) -> StreamLengthResult:
    """Stream-length distribution for ``trace``'s off-chip read misses.

    Materialized-convenience wrapper around :class:`StreamLengthAnalysis`.
    """
    return StreamLengthAnalysis(
        system, lookahead=lookahead, workload=trace.name
    ).consume(trace)
