"""Temporal-repetition breakdown via Sequitur (Fig. 7 methodology, §5.3).

The paper classifies each element of a miss-address sequence as:

* **non-repetitive** — the address occurrence is not part of any repeated
  subsequence;
* **new** — part of the *first* occurrence of a repeated subsequence;
* **head** — the first element of a subsequent occurrence (a stream must
  be located before it can be followed, so heads are not coverable);
* **opportunity** — the remaining elements of repeated occurrences (what
  temporal streaming can actually cover).

We build the Sequitur grammar and walk the root rule: each non-terminal
reference expands to a repeated subsequence (rule utility guarantees >= 2
uses). The first encounter of a rule yields "new" tokens; later
encounters yield one "head" plus "opportunity". Terminals remaining at
the root are non-repetitive. The trace walk is a single-pass incremental
consumer (:class:`RepetitionAnalysis`): only the trailing
``max_elements`` miss/trigger block ids are retained (bounded deques),
so peak memory is set by the Sequitur input bound, not trace length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Hashable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import HierarchyReplayAnalysis, StreamingAnalysis
from repro.analysis.sequitur import Rule, Sequitur
from repro.common.config import SystemConfig
from repro.trace.container import TraceLike
from repro.trace.events import MemoryAccess

#: classification labels in display order
CATEGORIES = ("opportunity", "head", "new", "non_repetitive")


@dataclass(frozen=True)
class RepetitionBreakdown:
    """Fractions of sequence elements per category (sums to 1)."""

    total: int
    opportunity: float
    head: float
    new: float
    non_repetitive: float

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.opportunity, self.head, self.new, self.non_repetitive)

    def format(self) -> str:
        return (
            f"opportunity={self.opportunity:6.1%} head={self.head:6.1%} "
            f"new={self.new:6.1%} non-rep={self.non_repetitive:6.1%} "
            f"(n={self.total})"
        )


def classify_repetition(sequence: Sequence[Hashable]) -> RepetitionBreakdown:
    """Classify every element of ``sequence`` (Fig. 7 categories)."""
    n = len(sequence)
    if n == 0:
        return RepetitionBreakdown(0, 0.0, 0.0, 0.0, 0.0)
    grammar = Sequitur.build(sequence)
    counts = {c: 0 for c in CATEGORIES}
    seen_rules: Set[int] = set()

    def expand_len(rule: Rule) -> int:
        length = 0
        for value in rule.symbols():
            if isinstance(value, Rule):
                length += expand_len(value)
            else:
                length += 1
        return length

    def walk_new(rule: Rule) -> None:
        """Expand a first-encounter occurrence: tokens are 'new', except
        nested rules already seen elsewhere, which repeat."""
        for value in rule.symbols():
            if isinstance(value, Rule):
                if value.id in seen_rules:
                    counts["head"] += 1
                    counts["opportunity"] += expand_len(value) - 1
                else:
                    seen_rules.add(value.id)
                    walk_new(value)
            else:
                counts["new"] += 1

    for value in grammar.root.symbols():
        if isinstance(value, Rule):
            if value.id in seen_rules:
                counts["head"] += 1
                counts["opportunity"] += expand_len(value) - 1
            else:
                seen_rules.add(value.id)
                walk_new(value)
        else:
            counts["non_repetitive"] += 1

    total = sum(counts.values())
    assert total == n, f"classification covered {total} of {n} elements"
    return RepetitionBreakdown(
        total=n,
        opportunity=counts["opportunity"] / n,
        head=counts["head"] / n,
        new=counts["new"] / n,
        non_repetitive=counts["non_repetitive"] / n,
    )


class MissSequenceExtractor(HierarchyReplayAnalysis):
    """Incremental hierarchy replay collecting miss / trigger block ids.

    Args:
        system: cache geometry used to identify off-chip misses.
        max_elements: retain only the trailing ``max_elements`` of each
            sequence (None keeps everything): the paper traces after
            extensive warming (§5.1), and a cold prefix is dominated by
            first-traversal compulsory misses that would mask
            steady-state repetition.
    """

    def __init__(
        self, system: SystemConfig, max_elements: Optional[int] = None
    ) -> None:
        super().__init__(system)
        self.misses: Deque[int] = deque(maxlen=max_elements)
        self.triggers: Deque[int] = deque(maxlen=max_elements)

    def _observe(self, access: MemoryAccess, block: int, offchip: bool,
                 generation) -> None:
        if offchip and not access.is_write:
            self.misses.append(block)
            if generation.is_trigger:
                self.triggers.append(block)

    def _finalize(self) -> Tuple[List[int], List[int]]:
        return list(self.misses), list(self.triggers)


class RepetitionAnalysis(StreamingAnalysis):
    """Incremental Fig. 7 analysis: Sequitur over the trailing miss tail.

    Args:
        system: cache geometry used to identify off-chip misses.
        max_elements: Sequitur input bound (grammar inference over very
            long sequences is the dominant cost of this analysis).
        workload: name carried for symmetry with the other analyses.
    """

    def __init__(
        self,
        system: SystemConfig,
        max_elements: int = 60000,
        workload: str = "",
    ) -> None:
        super().__init__()
        self.workload = workload
        self._extractor = MissSequenceExtractor(system, max_elements)

    def _update(self, access: MemoryAccess) -> None:
        self._extractor.update(access)

    def update_block(self, chunk) -> None:
        """Forward whole chunks to the wrapped extractor's batched replay."""
        if self._finalized:
            raise RuntimeError(
                f"{type(self).__name__}.update_block() called after finalize()"
            )
        self._extractor.update_block(chunk)

    def _finalize(self) -> Tuple[RepetitionBreakdown, RepetitionBreakdown]:
        misses, triggers = self._extractor.finalize()
        return classify_repetition(misses), classify_repetition(triggers)


def miss_and_trigger_sequences(
    trace: TraceLike, system: SystemConfig
) -> Tuple[List[int], List[int]]:
    """Replay ``trace`` through the hierarchy; return the off-chip read
    miss address sequence and its spatial-trigger subsequence (§5.3:
    "Triggers" are the subset of misses that begin a spatial generation).
    """
    return MissSequenceExtractor(system).consume(trace)


def repetition_analysis(
    trace: TraceLike,
    system: SystemConfig,
    max_elements: int = 60000,
) -> Tuple[RepetitionBreakdown, RepetitionBreakdown]:
    """Fig. 7 for one workload: (all-misses breakdown, triggers breakdown).

    Materialized-convenience wrapper around :class:`RepetitionAnalysis`;
    the *tail* of each sequence (``max_elements`` elements) is analyzed.
    """
    return RepetitionAnalysis(
        system, max_elements=max_elements,
        workload=getattr(trace, "name", ""),
    ).consume(trace)
