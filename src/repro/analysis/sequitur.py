"""Sequitur: linear-time hierarchical grammar inference [9].

Used (as in the paper, §5.3, and the prior temporal-streaming studies
[5, 24]) to quantify repetition in miss-address sequences. The algorithm
incrementally appends symbols to the root rule while maintaining two
invariants:

* **digram uniqueness** — no pair of adjacent symbols appears twice in
  the grammar; a repeated digram becomes (or reuses) a rule;
* **rule utility** — every non-root rule is referenced at least twice;
  a rule reduced to a single reference is inlined and deleted.

This is a faithful port of the canonical doubly-linked implementation
(guard nodes whose value back-points to the owning rule, a digram hash
index, and the classic triple-overlap repair in ``join``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple, Union

Terminal = Hashable


class Rule:
    """A production rule: guard node + doubly-linked body."""

    def __init__(self, grammar: "Sequitur") -> None:
        self.grammar = grammar
        self.id = grammar._next_rule_id
        grammar._next_rule_id += 1
        self.refcount = 0
        self.guard = _Symbol(self, grammar)
        self.refcount -= 1  # the guard's back-pointer is not a real use
        self.guard.next = self.guard
        self.guard.prev = self.guard

    def first(self) -> "_Symbol":
        return self.guard.next  # type: ignore[return-value]

    def last(self) -> "_Symbol":
        return self.guard.prev  # type: ignore[return-value]

    def symbols(self) -> List[Union[Terminal, "Rule"]]:
        """Current right-hand side as a plain list."""
        out: List[Union[Terminal, Rule]] = []
        node = self.first()
        while not node.is_guard():
            out.append(node.value)
            node = node.next  # type: ignore[assignment]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"R{self.id}"


def _key(value: Union[Terminal, Rule]):
    if isinstance(value, Rule):
        return ("R", value.id)
    return ("T", value)


class _Symbol:
    """A node in a rule body. Guards carry their owning Rule as value."""

    __slots__ = ("grammar", "value", "prev", "next")

    def __init__(self, value: Union[Terminal, Rule], grammar: "Sequitur") -> None:
        self.grammar = grammar
        self.value = value
        self.prev: Optional["_Symbol"] = None
        self.next: Optional["_Symbol"] = None
        if isinstance(value, Rule):
            value.refcount += 1

    # -- structural helpers ------------------------------------------------------

    def is_guard(self) -> bool:
        return isinstance(self.value, Rule) and self.value.guard is self

    def is_nonterminal(self) -> bool:
        return isinstance(self.value, Rule) and not self.is_guard()

    def digram(self) -> Tuple:
        return (_key(self.value), _key(self.next.value))  # type: ignore[union-attr]

    def join(self, right: "_Symbol") -> None:
        """Link self -> right, maintaining the digram index."""
        if self.next is not None:
            self.delete_digram()
            # triple-overlap repair (e.g. "aaa"): re-record the digram
            # that the deletion may have forgotten
            if (
                right.prev is not None
                and right.next is not None
                and _key(right.value) == _key(right.prev.value)
                and _key(right.value) == _key(right.next.value)
            ):
                self.grammar._index[right.digram()] = right
            if (
                self.prev is not None
                and _key(self.value) == _key(self.prev.value)
                and self.next is not None
                and _key(self.value) == _key(self.next.value)
            ):
                self.grammar._index[self.prev.digram()] = self.prev
        self.next = right
        right.prev = self

    def insert_after(self, symbol: "_Symbol") -> None:
        symbol.join(self.next)  # type: ignore[arg-type]
        self.join(symbol)

    def delete(self) -> None:
        """Unlink self from its rule."""
        self.prev.join(self.next)  # type: ignore[union-attr, arg-type]
        if not self.is_guard():
            self.delete_digram()
            if isinstance(self.value, Rule):
                self.value.refcount -= 1

    def delete_digram(self) -> None:
        if self.is_guard() or self.next is None or self.next.is_guard():
            return
        if self.grammar._index.get(self.digram()) is self:
            del self.grammar._index[self.digram()]

    # -- the invariants ------------------------------------------------------------

    def check(self) -> bool:
        """Enforce digram uniqueness for (self, self.next)."""
        if self.is_guard() or self.next is None or self.next.is_guard():
            return False
        match = self.grammar._index.get(self.digram())
        if match is None:
            self.grammar._index[self.digram()] = self
            return False
        if match.next is not self:  # overlapping occurrences are ignored
            self.process_match(match)
        return True

    def process_match(self, match: "_Symbol") -> None:
        if (
            match.prev is not None
            and match.prev.is_guard()
            and match.next is not None
            and match.next.next is not None
            and match.next.next.is_guard()
        ):
            # the match is a complete rule body: reuse that rule
            rule: Rule = match.prev.value  # type: ignore[assignment]
            self.substitute(rule)
        else:
            rule = Rule(self.grammar)
            self.grammar._rules[rule.id] = rule
            rule.last().insert_after(_Symbol(self.value, self.grammar))
            rule.last().insert_after(_Symbol(self.next.value, self.grammar))  # type: ignore[union-attr]
            match.substitute(rule)
            self.substitute(rule)
            self.grammar._index[rule.first().digram()] = rule.first()
        # rule utility: inline a sub-rule used only once
        first = rule.first()
        if first.is_nonterminal() and first.value.refcount == 1:  # type: ignore[union-attr]
            first.expand()

    def substitute(self, rule: Rule) -> None:
        """Replace (self, self.next) with a reference to ``rule``."""
        prev = self.prev
        assert prev is not None
        prev.next.delete()  # type: ignore[union-attr]
        prev.next.delete()  # type: ignore[union-attr]
        prev.insert_after(_Symbol(rule, self.grammar))
        if not prev.check():
            prev.next.check()  # type: ignore[union-attr]

    def expand(self) -> None:
        """Inline this sole reference to its rule (rule utility)."""
        rule: Rule = self.value  # type: ignore[assignment]
        left = self.prev
        right = self.next
        first = rule.first()
        last = rule.last()
        if self.grammar._index.get(self.digram()) is self:
            del self.grammar._index[self.digram()]
        self.grammar._rules.pop(rule.id, None)
        rule.refcount -= 1
        left.join(first)  # type: ignore[union-attr]
        last.join(right)  # type: ignore[arg-type]
        self.grammar._index[last.digram()] = last


@dataclass
class SequiturGrammar:
    """Finished grammar: the root production plus all sub-rules."""

    root: Rule
    rules: Dict[int, Rule] = field(default_factory=dict)

    def expand(self) -> List[Terminal]:
        """Re-derive the original input (sanity invariant for tests)."""
        out: List[Terminal] = []

        def walk(rule: Rule) -> None:
            for value in rule.symbols():
                if isinstance(value, Rule):
                    walk(value)
                else:
                    out.append(value)

        walk(self.root)
        return out

    def rule_count(self) -> int:
        return len(self.rules)

    def rule_utilities_ok(self) -> bool:
        """Invariant: every non-root rule is referenced at least twice."""
        return all(rule.refcount >= 2 for rule in self.rules.values())


class Sequitur:
    """Incremental Sequitur grammar builder.

    Follows the same ``update()``/``finalize()`` lifecycle as the trace
    analyses: feed terminals one at a time, then finalize exactly once
    for the finished grammar. ``grammar()`` remains available for
    non-destructive snapshots mid-stream.
    """

    def __init__(self) -> None:
        self._next_rule_id = 0
        self._index: Dict[Tuple, _Symbol] = {}
        self._rules: Dict[int, Rule] = {}
        self._finalized = False
        self.root = Rule(self)

    def append(self, value: Terminal) -> None:
        """Append one terminal to the input sequence.

        Raises:
            RuntimeError: if the grammar has already been finalized.
        """
        if self._finalized:
            raise RuntimeError("Sequitur.append() called after finalize()")
        self.root.last().insert_after(_Symbol(value, self))
        if self.root.first() is not self.root.last():
            self.root.last().prev.check()  # type: ignore[union-attr]

    #: lifecycle alias: the analyses' per-element hook
    update = append

    def feed(self, values: Iterable[Terminal]) -> None:
        """Append every terminal of ``values`` in order."""
        for value in values:
            self.append(value)

    def grammar(self) -> SequiturGrammar:
        """A snapshot of the current grammar (builder stays usable)."""
        return SequiturGrammar(root=self.root, rules=dict(self._rules))

    def finalize(self) -> SequiturGrammar:
        """Close the input sequence and return the finished grammar.

        Returns:
            The grammar over everything appended so far.

        Raises:
            RuntimeError: if called twice.
        """
        if self._finalized:
            raise RuntimeError("Sequitur.finalize() called twice")
        self._finalized = True
        return self.grammar()

    @staticmethod
    def build(values: Iterable[Terminal]) -> SequiturGrammar:
        """One-shot convenience constructor."""
        s = Sequitur()
        s.feed(values)
        return s.grammar()
